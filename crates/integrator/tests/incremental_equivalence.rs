//! Randomized equivalence between the two consolidation paths.
//!
//! The incremental path ([`quarry_integrator::state::ConsolidationState`])
//! keeps the unified ETL flow canonical and matches against a maintained
//! index; the seed path re-derives everything per step with the one-shot
//! [`integrate_md`]/[`integrate_etl`]. Over randomized add/change/remove
//! requirement sequences, both must produce **bit-identical** unified designs
//! (compared structurally *and* on the serialized xMD/xLM text) and identical
//! integration reports.
//!
//! A second check pits the delta scorer against whole-schema costing: every
//! MD step is replayed under an opaque wrapper of the same cost model (no
//! additive decomposition, so the integrator falls back to full scoring) and
//! must choose the same schema for the same cost.

use quarry_etl::cost::{EstimatedTime, SourceStats};
use quarry_etl::{parse_expr, AggSpec, ColType, Column, Flow, OpKind, Schema};
use quarry_formats::{xlm, xmd};
use quarry_integrator::etl::{integrate_etl, EtlIntegrationOptions};
use quarry_integrator::md::integrate_md;
use quarry_integrator::state::ConsolidationState;
use quarry_md::{CostModel, DimLink, Dimension, Fact, Level, MdDataType, MdSchema, Measure, StructuralComplexity};

// ---- deterministic randomness ---------------------------------------------

/// Minimal xorshift64 PRNG — the suite must be reproducible and the workspace
/// has no random-number dependency.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---- partial-design generator ---------------------------------------------

const TABLES: [&str; 3] = ["alpha", "beta", "gamma"];
const CONCEPTS: [&str; 3] = ["Alpha", "Beta", "Gamma"];
/// Small predicate pool per table so distinct requirements overlap often
/// (overlap is where index hits and merge decisions actually happen). All
/// predicates are single-table: cross-branch selections above joins are the
/// one known (and deliberate) divergence of canonical-form maintenance.
const THRESHOLDS: [&str; 3] = ["5", "10", "20"];

fn table_schema(t: &str) -> Schema {
    Schema::new(vec![
        Column::new(format!("{t}_id"), ColType::Integer),
        Column::new(format!("{t}_val"), ColType::Decimal),
        Column::new(format!("{t}_cat"), ColType::Text),
    ])
}

fn gen_etl(rng: &mut Rng, req: &str) -> Flow {
    let t = TABLES[rng.below(TABLES.len())];
    let mut f = Flow::new(format!("partial_{req}"));
    let ds = f.add_op(format!("DS_{t}"), OpKind::Datastore { datastore: t.into(), schema: table_schema(t) }).unwrap();
    let ex = f
        .append(
            ds,
            format!("EX_{t}"),
            OpKind::Extraction { columns: vec![format!("{t}_id"), format!("{t}_val"), format!("{t}_cat")] },
        )
        .unwrap();
    let mut tip = ex;
    let mut tag = t.to_string();
    if rng.chance(70) {
        let th = THRESHOLDS[rng.below(THRESHOLDS.len())];
        tip = f
            .append(
                tip,
                format!("SEL_{t}_{th}"),
                OpKind::Selection { predicate: parse_expr(&format!("{t}_val > {th}")).unwrap() },
            )
            .unwrap();
        tag = format!("{tag}_{th}");
    }
    if rng.chance(40) {
        tip = f
            .append(
                tip,
                format!("AGG_{t}"),
                OpKind::Aggregation {
                    group_by: vec![format!("{t}_cat")],
                    aggregates: vec![AggSpec::new(
                        "SUM",
                        parse_expr(&format!("{t}_val")).unwrap(),
                        format!("{t}_total"),
                    )],
                },
            )
            .unwrap();
        tag = format!("{tag}_agg");
    }
    f.append(tip, format!("LOAD_{tag}"), OpKind::Loader { table: format!("t_{tag}"), key: vec![] }).unwrap();
    f.stamp_requirement(req);
    f
}

fn gen_md(rng: &mut Rng, req: &str) -> MdSchema {
    let mut s = MdSchema::new(format!("partial_{req}"));
    let concept = CONCEPTS[rng.below(CONCEPTS.len())];
    // Two dimension-name spellings per concept: same spelling pairs by name,
    // different spellings pair by concept — and two partial dims of the same
    // concept exercise the collision-resolution path.
    let spelling = rng.below(2);
    let dim_name = |c: &str, v: usize| if v == 0 { format!("Dim{c}") } else { format!("{c}Axis") };
    let mk_dim = |c: &str, v: usize| {
        Dimension::new(dim_name(c, v), Level::new(c, format!("{c}ID"), MdDataType::Integer).with_concept(c))
    };
    s.dimensions.push(mk_dim(concept, spelling));
    if rng.chance(25) {
        let other = CONCEPTS[rng.below(CONCEPTS.len())];
        if other != concept {
            s.dimensions.push(mk_dim(other, rng.below(2)));
        }
    }
    let fact_concept = CONCEPTS[rng.below(CONCEPTS.len())];
    let mut f =
        Fact::new(if rng.chance(50) { format!("fact_{}", fact_concept.to_lowercase()) } else { format!("f_{req}") });
    f.concept = Some(fact_concept.to_string());
    let m = rng.below(THRESHOLDS.len());
    f.measures.push(Measure::new(format!("total_{m}"), format!("sum(val_{m})")));
    for d in &s.dimensions {
        f.dimensions.push(DimLink::new(&d.name, &d.atomic));
    }
    s.facts.push(f);
    s.stamp_requirement(req);
    s
}

// ---- the two paths ---------------------------------------------------------

/// A cost model that hides its additive decomposition, forcing the integrator
/// onto the whole-schema-costing path.
struct Opaque(StructuralComplexity);

impl CostModel for Opaque {
    fn name(&self) -> &str {
        "opaque structural complexity"
    }

    fn cost(&self, schema: &MdSchema) -> f64 {
        self.0.cost(schema)
    }
}

fn stats() -> SourceStats {
    SourceStats::new().with_table("alpha", 50_000.0).with_table("beta", 8_000.0).with_table("gamma", 1_000.0)
}

/// Drives one randomized requirement lifecycle down both paths, asserting
/// bit-identical state after every operation.
fn run_equivalence(seed: u64, ops: usize, options: EtlIntegrationOptions) {
    let mut rng = Rng::new(seed);
    let cost = StructuralComplexity::new();
    let etl_cost = EstimatedTime::new();
    let stats = stats();

    // Seed path: re-derive with the one-shot integrators every step.
    let mut seed_md = MdSchema::new("unified");
    let mut seed_etl = Flow::new("unified");
    // Incremental path: maintained consolidation state.
    let mut inc_md = MdSchema::new("unified");
    let mut inc_etl = Flow::new("unified");
    let mut state = ConsolidationState::new();

    let mut active: Vec<String> = Vec::new();
    let mut next_id = 0usize;
    let mut adds = 0usize;

    for step in 0..ops {
        let roll = rng.below(100);
        if active.is_empty() || roll < 70 {
            // Add a fresh requirement.
            let id = format!("R{next_id}");
            next_id += 1;
            add_both(
                &mut rng,
                &id,
                &cost,
                &etl_cost,
                &stats,
                options,
                &mut seed_md,
                &mut seed_etl,
                &mut inc_md,
                &mut inc_etl,
                &mut state,
            );
            active.push(id);
            adds += 1;
        } else if roll < 85 {
            // Remove a random active requirement.
            let id = active.swap_remove(rng.below(active.len()));
            seed_md.retract_requirement(&id);
            seed_etl.retract_requirement(&id);
            inc_md.retract_requirement(&id);
            inc_etl.retract_requirement(&id);
            state.invalidate();
        } else {
            // Change: retract the old version, integrate a new one (same id).
            let id = active[rng.below(active.len())].clone();
            seed_md.retract_requirement(&id);
            seed_etl.retract_requirement(&id);
            inc_md.retract_requirement(&id);
            inc_etl.retract_requirement(&id);
            state.invalidate();
            add_both(
                &mut rng,
                &id,
                &cost,
                &etl_cost,
                &stats,
                options,
                &mut seed_md,
                &mut seed_etl,
                &mut inc_md,
                &mut inc_etl,
                &mut state,
            );
        }

        assert_eq!(seed_md, inc_md, "seed {seed} step {step}: unified MD schemas diverged");
        assert_eq!(seed_etl, inc_etl, "seed {seed} step {step}: unified ETL flows diverged");
        assert_eq!(
            xmd::to_string(&seed_md),
            xmd::to_string(&inc_md),
            "seed {seed} step {step}: xMD serialization diverged"
        );
        assert_eq!(
            xlm::to_string(&seed_etl),
            xlm::to_string(&inc_etl),
            "seed {seed} step {step}: xLM serialization diverged"
        );
    }

    assert!(adds >= ops / 2, "generator sanity: the sequence should be add-heavy");
    let s = state.stats();
    assert!(
        s.etl_index_rebuilds < adds as u64,
        "seed {seed}: at least one step must have reused the maintained index \
         ({} rebuilds over {adds} adds)",
        s.etl_index_rebuilds
    );
    seed_etl.validate().expect("final unified flow is well-formed");
    assert!(!seed_md.validate().iter().any(|v| v.kind.is_error()), "final unified schema is sound");
}

#[allow(clippy::too_many_arguments)]
fn add_both(
    rng: &mut Rng,
    id: &str,
    cost: &StructuralComplexity,
    etl_cost: &EstimatedTime,
    stats: &SourceStats,
    options: EtlIntegrationOptions,
    seed_md: &mut MdSchema,
    seed_etl: &mut Flow,
    inc_md: &mut MdSchema,
    inc_etl: &mut Flow,
    state: &mut ConsolidationState,
) {
    let p_md = gen_md(rng, id);
    let p_etl = gen_etl(rng, id);

    let one_md = integrate_md(seed_md, &p_md, cost).expect("seed MD integration");
    let one_etl = integrate_etl(seed_etl, &p_etl, etl_cost, stats, options).expect("seed ETL integration");
    *seed_md = one_md.schema;
    *seed_etl = one_etl.flow;

    // Delta scoring vs whole-schema costing: same choice, same cost.
    let opaque = integrate_md(inc_md, &p_md, &Opaque(StructuralComplexity::new())).expect("opaque MD integration");
    let inc = state.md_step(inc_md, &p_md, cost).expect("incremental MD step");
    assert_eq!(inc.schema, opaque.schema, "req {id}: delta scorer disagrees with whole-schema costing");
    assert_eq!(inc.report, opaque.report, "req {id}: delta/full reports diverged");
    *inc_md = inc.schema;
    let inc_report = state.etl_step(inc_etl, &p_etl, etl_cost, stats, options).expect("incremental ETL step");

    assert_eq!(one_md.report, inc.report, "req {id}: MD reports diverged");
    assert_eq!(one_etl.report, inc_report, "req {id}: ETL reports diverged");
}

// ---- the suite -------------------------------------------------------------

#[test]
fn randomized_lifecycles_are_bit_identical_across_paths() {
    for seed in [3, 7, 1984] {
        run_equivalence(seed, 30, EtlIntegrationOptions::default());
    }
}

#[test]
fn equivalence_holds_without_rule_alignment() {
    // The E8 ablation flavor: canonical form is dedupe-only.
    run_equivalence(42, 30, EtlIntegrationOptions { align_with_rules: false });
}

#[test]
fn long_add_only_sequence_keeps_a_single_index_build() {
    let mut rng = Rng::new(99);
    let cost = StructuralComplexity::new();
    let etl_cost = EstimatedTime::new();
    let stats = stats();
    let options = EtlIntegrationOptions::default();
    let mut md = MdSchema::new("unified");
    let mut etl = Flow::new("unified");
    let mut state = ConsolidationState::new();
    for i in 0..20 {
        let id = format!("R{i}");
        let p_md = gen_md(&mut rng, &id);
        let p_etl = gen_etl(&mut rng, &id);
        md = state.md_step(&md, &p_md, &cost).unwrap().schema;
        state.etl_step(&mut etl, &p_etl, &etl_cost, &stats, options).unwrap();
    }
    let s = state.stats();
    assert_eq!(s.etl_index_rebuilds, 1, "no invalidation → the index is built exactly once");
    assert!(s.etl_index_hits > 0, "overlapping pipelines must hit the index");
    etl.validate().unwrap();
}
