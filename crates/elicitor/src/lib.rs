//! The Requirements Elicitor (paper §2.1).
//!
//! The original component is a D3-based web UI over the domain ontology;
//! its *logic* — what this crate implements — is the assistance behind it:
//!
//! - "analyzing the relationships in the domain ontology, and automatically
//!   suggesting potentially interesting analytical perspectives": given a
//!   focus of analysis (e.g. *Lineitem*), [`Elicitor::suggest_dimensions`]
//!   ranks the concepts functionally reachable from it (Supplier, Nation,
//!   Part, … in the paper's example) and
//!   [`Elicitor::suggest_measures`] ranks its numeric properties;
//! - ranking which concepts make good analysis foci in the first place
//!   ([`Elicitor::suggest_foci`]);
//! - assembling a *validated* xRQ requirement from domain-vocabulary terms
//!   ([`Session`]), resolving business aliases through the ontology.

#![forbid(unsafe_code)]

use quarry_formats::{Aggregation, MeasureSpec, Requirement, Slicer};
use quarry_ontology::{ConceptId, Ontology, OntologyError, PropertyId};
use std::fmt;

/// A suggested analysis dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionSuggestion {
    pub concept: ConceptId,
    pub name: String,
    /// Hops from the focus along functional associations.
    pub distance: usize,
    /// Concepts on the path, focus first.
    pub via: Vec<String>,
    /// Higher is more interesting.
    pub score: f64,
}

/// A suggested measure.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureSuggestion {
    pub property: PropertyId,
    /// Figure-4-style reference (`Lineitem_l_extendedpriceATRIBUT`).
    pub reference: String,
    pub score: f64,
}

/// A suggested analysis focus (fact candidate).
#[derive(Debug, Clone, PartialEq)]
pub struct FocusSuggestion {
    pub concept: ConceptId,
    pub name: String,
    pub score: f64,
}

/// A full analytical perspective for one focus.
#[derive(Debug, Clone)]
pub struct Perspective {
    pub focus: ConceptId,
    pub measures: Vec<MeasureSuggestion>,
    pub dimensions: Vec<DimensionSuggestion>,
}

/// The suggestion engine over a domain ontology.
pub struct Elicitor<'a> {
    onto: &'a Ontology,
}

impl<'a> Elicitor<'a> {
    pub fn new(onto: &'a Ontology) -> Self {
        Elicitor { onto }
    }

    /// Ranks dimension candidates for a focus: every concept reachable via
    /// functional (to-one) paths, scored by proximity and descriptive
    /// richness (descriptor properties make a concept a useful dimension).
    pub fn suggest_dimensions(&self, focus: ConceptId) -> Vec<DimensionSuggestion> {
        let mut out = Vec::new();
        for (target, path) in self.onto.functional_paths(focus) {
            if target == focus {
                continue;
            }
            let descriptors =
                self.onto.all_properties(target).into_iter().filter(|&p| !self.onto.property_def(p).identifier).count();
            let score = (1.0 + descriptors as f64) / (1.0 + path.len() as f64);
            out.push(DimensionSuggestion {
                concept: target,
                name: self.onto.concept(target).name.clone(),
                distance: path.len(),
                via: path.concepts(self.onto).iter().map(|&c| self.onto.concept(c).name.clone()).collect(),
                score,
            });
        }
        out.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.name.cmp(&b.name))
        });
        out
    }

    /// Ranks measure candidates for a focus: numeric, non-identifier
    /// properties of the focus concept itself (properties of dimension
    /// concepts describe contexts, not quantities to aggregate).
    pub fn suggest_measures(&self, focus: ConceptId) -> Vec<MeasureSuggestion> {
        let mut out: Vec<MeasureSuggestion> = self
            .onto
            .all_properties(focus)
            .into_iter()
            .filter(|&p| {
                let def = self.onto.property_def(p);
                def.datatype.is_numeric() && !def.identifier
            })
            .map(|p| MeasureSuggestion { property: p, reference: self.onto.property_ref(p), score: 1.0 })
            .collect();
        out.sort_by(|a, b| a.reference.cmp(&b.reference));
        out
    }

    /// Ranks analysis-focus candidates: concepts scored by how many
    /// dimension concepts they functionally reach and how many numeric
    /// properties they carry — the classic "fact table smell".
    pub fn suggest_foci(&self) -> Vec<FocusSuggestion> {
        let mut out: Vec<FocusSuggestion> = self
            .onto
            .concept_ids()
            .map(|c| {
                let reach = self.onto.functional_paths(c).len() - 1;
                let numeric = self
                    .onto
                    .all_properties(c)
                    .into_iter()
                    .filter(|&p| {
                        let def = self.onto.property_def(p);
                        def.datatype.is_numeric() && !def.identifier
                    })
                    .count();
                FocusSuggestion {
                    concept: c,
                    name: self.onto.concept(c).name.clone(),
                    score: reach as f64 + 2.0 * numeric as f64,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.name.cmp(&b.name))
        });
        out
    }

    /// The complete perspective for one focus — what the UI would render
    /// after the user clicks a concept.
    pub fn explore(&self, focus: ConceptId) -> Perspective {
        Perspective { focus, measures: self.suggest_measures(focus), dimensions: self.suggest_dimensions(focus) }
    }
}

/// Errors raised while assembling a requirement.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    Ontology(OntologyError),
    /// The term resolved to a concept where a property was needed.
    NotAProperty(String),
    /// A measure expression references something unresolvable.
    BadMeasure {
        measure: String,
        detail: String,
    },
    /// The requirement has no measures or no dimensions.
    Incomplete(String),
    UnknownAggregation(String),
    /// An aggregation references an unknown measure/dimension.
    DanglingAggregation(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Ontology(e) => write!(f, "{e}"),
            SessionError::NotAProperty(t) => write!(f, "`{t}` names a concept; pick one of its properties"),
            SessionError::BadMeasure { measure, detail } => write!(f, "measure `{measure}`: {detail}"),
            SessionError::Incomplete(what) => write!(f, "requirement is incomplete: {what}"),
            SessionError::UnknownAggregation(a) => write!(f, "unknown aggregation function `{a}`"),
            SessionError::DanglingAggregation(d) => write!(f, "aggregation references unknown element `{d}`"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<OntologyError> for SessionError {
    fn from(e: OntologyError) -> Self {
        SessionError::Ontology(e)
    }
}

/// An elicitation session: builds one validated [`Requirement`] from
/// vocabulary terms (concept/property names or business aliases).
pub struct Session<'a> {
    onto: &'a Ontology,
    req: Requirement,
}

impl<'a> Session<'a> {
    pub fn new(onto: &'a Ontology, id: impl Into<String>) -> Self {
        Session { onto, req: Requirement::new(id) }
    }

    pub fn describe(&mut self, text: impl Into<String>) -> &mut Self {
        self.req.description = text.into();
        self
    }

    /// Resolves a term to a property reference.
    fn resolve_property(&self, term: &str) -> Result<PropertyId, SessionError> {
        // Accept qualified references directly.
        if let Ok(p) = self.onto.resolve_property_ref(term) {
            return Ok(p);
        }
        match self.onto.resolve_term(term)? {
            quarry_ontology::Term::Property(p) => Ok(p),
            quarry_ontology::Term::Concept(_) => Err(SessionError::NotAProperty(term.to_string())),
        }
    }

    /// Adds an analysis dimension by vocabulary term or qualified reference.
    pub fn add_dimension(&mut self, term: &str) -> Result<&mut Self, SessionError> {
        let p = self.resolve_property(term)?;
        let reference = self.onto.property_ref(p);
        if !self.req.dimensions.contains(&reference) {
            self.req.dimensions.push(reference);
        }
        Ok(self)
    }

    /// Adds a measure: `expression` is an arithmetic formula over qualified
    /// property references (or vocabulary terms for single properties).
    pub fn add_measure(&mut self, name: &str, expression: &str) -> Result<&mut Self, SessionError> {
        let expr = quarry_etl::parse_expr(expression)
            .map_err(|e| SessionError::BadMeasure { measure: name.to_string(), detail: e.to_string() })?;
        // Every referenced column must resolve to an ontology property;
        // rewrite vocabulary terms to canonical references.
        let mut rewritten = expr.clone();
        for col in expr.columns() {
            let p = self
                .resolve_property(&col)
                .map_err(|e| SessionError::BadMeasure { measure: name.to_string(), detail: e.to_string() })?;
            let canonical = self.onto.property_ref(p);
            rewritten.rename_columns(&|c| (c == col).then(|| canonical.clone()));
        }
        self.req.measures.push(MeasureSpec { id: name.to_string(), function: rewritten.to_string() });
        Ok(self)
    }

    /// Adds a slicer on a property term.
    pub fn add_slicer(&mut self, term: &str, operator: &str, value: &str) -> Result<&mut Self, SessionError> {
        let p = self.resolve_property(term)?;
        self.req.slicers.push(Slicer {
            concept: self.onto.property_ref(p),
            operator: operator.to_string(),
            value: value.to_string(),
        });
        Ok(self)
    }

    /// Requests an aggregation of a measure along a dimension.
    pub fn aggregate(
        &mut self,
        measure: &str,
        dimension_term: &str,
        function: &str,
    ) -> Result<&mut Self, SessionError> {
        if quarry_md::AggFn::parse(function).is_none() {
            return Err(SessionError::UnknownAggregation(function.to_string()));
        }
        let p = self.resolve_property(dimension_term)?;
        self.req.aggregations.push(Aggregation {
            order: 1,
            dimension: self.onto.property_ref(p),
            measure: measure.to_string(),
            function: function.to_string(),
        });
        Ok(self)
    }

    /// Validates completeness and returns the requirement.
    pub fn build(self) -> Result<Requirement, SessionError> {
        if self.req.measures.is_empty() {
            return Err(SessionError::Incomplete("no measures".into()));
        }
        if self.req.dimensions.is_empty() {
            return Err(SessionError::Incomplete("no dimensions".into()));
        }
        for a in &self.req.aggregations {
            if !self.req.measures.iter().any(|m| m.id == a.measure) {
                return Err(SessionError::DanglingAggregation(a.measure.clone()));
            }
            if !self.req.dimensions.contains(&a.dimension) {
                return Err(SessionError::DanglingAggregation(a.dimension.clone()));
            }
        }
        Ok(self.req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_ontology::tpch;

    #[test]
    fn lineitem_focus_suggests_the_paper_dimensions() {
        // Paper §2.1: "a user may choose the focus of an analysis (e.g.,
        // Lineitem), while the system then automatically suggests useful
        // dimensions (e.g., Supplier, Nation, Part)".
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let names: Vec<String> = e.suggest_dimensions(li).into_iter().map(|s| s.name).collect();
        for expected in ["Supplier", "Nation", "Part"] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing from {names:?}");
        }
    }

    #[test]
    fn closer_and_richer_concepts_rank_higher() {
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let suggestions = e.suggest_dimensions(li);
        let pos = |name: &str| suggestions.iter().position(|s| s.name == name).unwrap();
        assert!(pos("Part") < pos("Region"), "direct, attribute-rich Part beats 3-hop Region");
    }

    #[test]
    fn suggestion_paths_are_reported() {
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let nation = e.suggest_dimensions(li).into_iter().find(|s| s.name == "Nation").unwrap();
        assert!(nation.distance >= 2, "Nation is at least two hops from Lineitem");
        assert_eq!(nation.via.first().map(String::as_str), Some("Lineitem"));
        assert_eq!(nation.via.last().map(String::as_str), Some("Nation"));
    }

    #[test]
    fn measure_suggestions_are_numeric_non_keys() {
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let refs: Vec<String> = e.suggest_measures(li).into_iter().map(|m| m.reference).collect();
        assert!(refs.contains(&"Lineitem_l_extendedpriceATRIBUT".to_string()));
        assert!(refs.contains(&"Lineitem_l_discountATRIBUT".to_string()));
        assert!(!refs.iter().any(|r| r.contains("l_orderkey")), "keys are not measures");
        assert!(!refs.iter().any(|r| r.contains("l_comment")), "text is not a measure");
    }

    #[test]
    fn lineitem_is_the_top_focus_of_tpch() {
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let foci = e.suggest_foci();
        assert_eq!(foci[0].name, "Lineitem", "{foci:?}");
    }

    #[test]
    fn explore_bundles_both_lists() {
        let d = tpch::domain();
        let e = Elicitor::new(&d.ontology);
        let li = d.ontology.concept_by_name("Lineitem").unwrap();
        let p = e.explore(li);
        assert!(!p.measures.is_empty() && !p.dimensions.is_empty());
    }

    #[test]
    fn session_builds_figure4_requirement_from_vocabulary() {
        let d = tpch::domain();
        let mut s = Session::new(&d.ontology, "IR1");
        s.describe("average revenue per part and supplier, Spain only");
        s.add_dimension("Part.p_name").unwrap();
        s.add_dimension("Supplier.s_name").unwrap();
        s.add_measure("revenue", "Lineitem_l_extendedpriceATRIBUT * Lineitem_l_discountATRIBUT").unwrap();
        s.add_slicer("Nation.n_name", "=", "Spain").unwrap();
        s.aggregate("revenue", "Part.p_name", "AVERAGE").unwrap();
        s.aggregate("revenue", "Supplier.s_name", "AVERAGE").unwrap();
        let req = s.build().unwrap();
        let reference = quarry_formats::xrq::figure4_requirement();
        assert_eq!(req.dimensions, reference.dimensions);
        assert_eq!(req.measures, reference.measures);
        assert_eq!(req.slicers, reference.slicers);
        assert_eq!(req.aggregations, reference.aggregations);
    }

    #[test]
    fn session_resolves_business_aliases() {
        let d = tpch::domain();
        let mut s = Session::new(&d.ontology, "IR5");
        // "extended price" and "discount rate" are aliases registered by the
        // TPC-H domain builder.
        assert!(s.add_measure("gross", "'x' +").is_err(), "syntax error rejected");
        let mut s = Session::new(&d.ontology, "IR5");
        assert!(s.add_measure("gross", "extended_price_alias_not_registered").is_err());
        let mut s = Session::new(&d.ontology, "IR5");
        s.add_dimension("Part.p_brand").unwrap();
        s.add_measure("gross", "Lineitem.l_extendedprice").unwrap();
        let req = s.build().unwrap();
        assert_eq!(req.measures[0].function, "Lineitem_l_extendedpriceATRIBUT");
    }

    #[test]
    fn duplicate_dimensions_are_deduped() {
        let d = tpch::domain();
        let mut s = Session::new(&d.ontology, "IR5");
        s.add_dimension("Part.p_name").unwrap();
        s.add_dimension("Part_p_nameATRIBUT").unwrap();
        s.add_measure("m", "Lineitem.l_quantity").unwrap();
        assert_eq!(s.build().unwrap().dimensions.len(), 1);
    }

    #[test]
    fn session_errors() {
        let d = tpch::domain();
        // Concept where a property is needed.
        let mut s = Session::new(&d.ontology, "X");
        assert!(matches!(s.add_dimension("Part"), Err(SessionError::NotAProperty(_))));
        // Unknown aggregation function.
        assert!(matches!(s.aggregate("m", "Part.p_name", "MEDIAN"), Err(SessionError::UnknownAggregation(_))));
        // Incomplete builds.
        let s = Session::new(&d.ontology, "X");
        assert!(matches!(s.build(), Err(SessionError::Incomplete(_))));
        let mut s = Session::new(&d.ontology, "X");
        s.add_measure("m", "Lineitem.l_quantity").unwrap();
        assert!(matches!(s.build(), Err(SessionError::Incomplete(_))));
        // Dangling aggregation.
        let mut s = Session::new(&d.ontology, "X");
        s.add_dimension("Part.p_name").unwrap();
        s.add_measure("m", "Lineitem.l_quantity").unwrap();
        s.aggregate("ghost", "Part.p_name", "SUM").unwrap();
        assert!(matches!(s.build(), Err(SessionError::DanglingAggregation(_))));
    }

    #[test]
    fn scales_to_synthetic_ontologies() {
        let d = quarry_ontology::synthetic::generate(&quarry_ontology::synthetic::SyntheticSpec::with_concepts(128, 3));
        let e = Elicitor::new(&d.ontology);
        let sugg = e.suggest_dimensions(d.hubs[0]);
        assert!(sugg.len() >= 16, "hub reaches its chains: {}", sugg.len());
        assert!(!e.suggest_foci().is_empty());
    }
}
